
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/cache_energy.cc" "src/power/CMakeFiles/lopass_power.dir/cache_energy.cc.o" "gcc" "src/power/CMakeFiles/lopass_power.dir/cache_energy.cc.o.d"
  "/root/repo/src/power/tech_library.cc" "src/power/CMakeFiles/lopass_power.dir/tech_library.cc.o" "gcc" "src/power/CMakeFiles/lopass_power.dir/tech_library.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lopass_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
