file(REMOVE_RECURSE
  "CMakeFiles/lopass_sched.dir/asap_alap.cc.o"
  "CMakeFiles/lopass_sched.dir/asap_alap.cc.o.d"
  "CMakeFiles/lopass_sched.dir/dfg.cc.o"
  "CMakeFiles/lopass_sched.dir/dfg.cc.o.d"
  "CMakeFiles/lopass_sched.dir/force_directed.cc.o"
  "CMakeFiles/lopass_sched.dir/force_directed.cc.o.d"
  "CMakeFiles/lopass_sched.dir/list_scheduler.cc.o"
  "CMakeFiles/lopass_sched.dir/list_scheduler.cc.o.d"
  "CMakeFiles/lopass_sched.dir/resource_set.cc.o"
  "CMakeFiles/lopass_sched.dir/resource_set.cc.o.d"
  "liblopass_sched.a"
  "liblopass_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lopass_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
