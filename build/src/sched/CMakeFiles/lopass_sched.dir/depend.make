# Empty dependencies file for lopass_sched.
# This may be replaced when dependencies are built.
