
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/asap_alap.cc" "src/sched/CMakeFiles/lopass_sched.dir/asap_alap.cc.o" "gcc" "src/sched/CMakeFiles/lopass_sched.dir/asap_alap.cc.o.d"
  "/root/repo/src/sched/dfg.cc" "src/sched/CMakeFiles/lopass_sched.dir/dfg.cc.o" "gcc" "src/sched/CMakeFiles/lopass_sched.dir/dfg.cc.o.d"
  "/root/repo/src/sched/force_directed.cc" "src/sched/CMakeFiles/lopass_sched.dir/force_directed.cc.o" "gcc" "src/sched/CMakeFiles/lopass_sched.dir/force_directed.cc.o.d"
  "/root/repo/src/sched/list_scheduler.cc" "src/sched/CMakeFiles/lopass_sched.dir/list_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/lopass_sched.dir/list_scheduler.cc.o.d"
  "/root/repo/src/sched/resource_set.cc" "src/sched/CMakeFiles/lopass_sched.dir/resource_set.cc.o" "gcc" "src/sched/CMakeFiles/lopass_sched.dir/resource_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lopass_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lopass_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/lopass_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
