file(REMOVE_RECURSE
  "liblopass_sched.a"
)
