file(REMOVE_RECURSE
  "CMakeFiles/lopass_common.dir/error.cc.o"
  "CMakeFiles/lopass_common.dir/error.cc.o.d"
  "CMakeFiles/lopass_common.dir/logging.cc.o"
  "CMakeFiles/lopass_common.dir/logging.cc.o.d"
  "CMakeFiles/lopass_common.dir/table.cc.o"
  "CMakeFiles/lopass_common.dir/table.cc.o.d"
  "CMakeFiles/lopass_common.dir/units.cc.o"
  "CMakeFiles/lopass_common.dir/units.cc.o.d"
  "liblopass_common.a"
  "liblopass_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lopass_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
