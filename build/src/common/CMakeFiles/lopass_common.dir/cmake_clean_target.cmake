file(REMOVE_RECURSE
  "liblopass_common.a"
)
