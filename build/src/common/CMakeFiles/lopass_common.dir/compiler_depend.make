# Empty compiler generated dependencies file for lopass_common.
# This may be replaced when dependencies are built.
