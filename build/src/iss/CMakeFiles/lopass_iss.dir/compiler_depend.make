# Empty compiler generated dependencies file for lopass_iss.
# This may be replaced when dependencies are built.
