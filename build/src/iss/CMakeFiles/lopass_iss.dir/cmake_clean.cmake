file(REMOVE_RECURSE
  "CMakeFiles/lopass_iss.dir/energy_model.cc.o"
  "CMakeFiles/lopass_iss.dir/energy_model.cc.o.d"
  "CMakeFiles/lopass_iss.dir/simulator.cc.o"
  "CMakeFiles/lopass_iss.dir/simulator.cc.o.d"
  "liblopass_iss.a"
  "liblopass_iss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lopass_iss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
