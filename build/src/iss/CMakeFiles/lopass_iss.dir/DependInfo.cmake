
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iss/energy_model.cc" "src/iss/CMakeFiles/lopass_iss.dir/energy_model.cc.o" "gcc" "src/iss/CMakeFiles/lopass_iss.dir/energy_model.cc.o.d"
  "/root/repo/src/iss/simulator.cc" "src/iss/CMakeFiles/lopass_iss.dir/simulator.cc.o" "gcc" "src/iss/CMakeFiles/lopass_iss.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lopass_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lopass_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/lopass_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/lopass_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/lopass_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
