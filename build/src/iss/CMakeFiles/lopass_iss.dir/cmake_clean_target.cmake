file(REMOVE_RECURSE
  "liblopass_iss.a"
)
