# Empty compiler generated dependencies file for lopass_cache.
# This may be replaced when dependencies are built.
