file(REMOVE_RECURSE
  "liblopass_cache.a"
)
