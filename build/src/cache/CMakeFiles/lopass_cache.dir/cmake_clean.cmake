file(REMOVE_RECURSE
  "CMakeFiles/lopass_cache.dir/cache_sim.cc.o"
  "CMakeFiles/lopass_cache.dir/cache_sim.cc.o.d"
  "CMakeFiles/lopass_cache.dir/trace_profiler.cc.o"
  "CMakeFiles/lopass_cache.dir/trace_profiler.cc.o.d"
  "liblopass_cache.a"
  "liblopass_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lopass_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
