
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsl/lexer.cc" "src/dsl/CMakeFiles/lopass_dsl.dir/lexer.cc.o" "gcc" "src/dsl/CMakeFiles/lopass_dsl.dir/lexer.cc.o.d"
  "/root/repo/src/dsl/lower.cc" "src/dsl/CMakeFiles/lopass_dsl.dir/lower.cc.o" "gcc" "src/dsl/CMakeFiles/lopass_dsl.dir/lower.cc.o.d"
  "/root/repo/src/dsl/parser.cc" "src/dsl/CMakeFiles/lopass_dsl.dir/parser.cc.o" "gcc" "src/dsl/CMakeFiles/lopass_dsl.dir/parser.cc.o.d"
  "/root/repo/src/dsl/transform.cc" "src/dsl/CMakeFiles/lopass_dsl.dir/transform.cc.o" "gcc" "src/dsl/CMakeFiles/lopass_dsl.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lopass_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lopass_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
