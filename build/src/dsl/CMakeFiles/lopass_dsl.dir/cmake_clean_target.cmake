file(REMOVE_RECURSE
  "liblopass_dsl.a"
)
