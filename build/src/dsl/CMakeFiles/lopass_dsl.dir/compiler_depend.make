# Empty compiler generated dependencies file for lopass_dsl.
# This may be replaced when dependencies are built.
