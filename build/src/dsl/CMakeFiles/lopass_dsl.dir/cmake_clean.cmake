file(REMOVE_RECURSE
  "CMakeFiles/lopass_dsl.dir/lexer.cc.o"
  "CMakeFiles/lopass_dsl.dir/lexer.cc.o.d"
  "CMakeFiles/lopass_dsl.dir/lower.cc.o"
  "CMakeFiles/lopass_dsl.dir/lower.cc.o.d"
  "CMakeFiles/lopass_dsl.dir/parser.cc.o"
  "CMakeFiles/lopass_dsl.dir/parser.cc.o.d"
  "CMakeFiles/lopass_dsl.dir/transform.cc.o"
  "CMakeFiles/lopass_dsl.dir/transform.cc.o.d"
  "liblopass_dsl.a"
  "liblopass_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lopass_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
