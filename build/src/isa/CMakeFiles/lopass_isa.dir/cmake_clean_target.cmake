file(REMOVE_RECURSE
  "liblopass_isa.a"
)
