file(REMOVE_RECURSE
  "CMakeFiles/lopass_isa.dir/codegen.cc.o"
  "CMakeFiles/lopass_isa.dir/codegen.cc.o.d"
  "CMakeFiles/lopass_isa.dir/encoding.cc.o"
  "CMakeFiles/lopass_isa.dir/encoding.cc.o.d"
  "CMakeFiles/lopass_isa.dir/isa.cc.o"
  "CMakeFiles/lopass_isa.dir/isa.cc.o.d"
  "CMakeFiles/lopass_isa.dir/peephole.cc.o"
  "CMakeFiles/lopass_isa.dir/peephole.cc.o.d"
  "liblopass_isa.a"
  "liblopass_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lopass_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
