# Empty dependencies file for lopass_isa.
# This may be replaced when dependencies are built.
