
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/codegen.cc" "src/isa/CMakeFiles/lopass_isa.dir/codegen.cc.o" "gcc" "src/isa/CMakeFiles/lopass_isa.dir/codegen.cc.o.d"
  "/root/repo/src/isa/encoding.cc" "src/isa/CMakeFiles/lopass_isa.dir/encoding.cc.o" "gcc" "src/isa/CMakeFiles/lopass_isa.dir/encoding.cc.o.d"
  "/root/repo/src/isa/isa.cc" "src/isa/CMakeFiles/lopass_isa.dir/isa.cc.o" "gcc" "src/isa/CMakeFiles/lopass_isa.dir/isa.cc.o.d"
  "/root/repo/src/isa/peephole.cc" "src/isa/CMakeFiles/lopass_isa.dir/peephole.cc.o" "gcc" "src/isa/CMakeFiles/lopass_isa.dir/peephole.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lopass_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lopass_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
