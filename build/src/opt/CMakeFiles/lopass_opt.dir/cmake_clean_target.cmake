file(REMOVE_RECURSE
  "liblopass_opt.a"
)
