file(REMOVE_RECURSE
  "CMakeFiles/lopass_opt.dir/passes.cc.o"
  "CMakeFiles/lopass_opt.dir/passes.cc.o.d"
  "liblopass_opt.a"
  "liblopass_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lopass_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
