# Empty dependencies file for lopass_opt.
# This may be replaced when dependencies are built.
