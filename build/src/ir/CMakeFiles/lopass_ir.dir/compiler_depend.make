# Empty compiler generated dependencies file for lopass_ir.
# This may be replaced when dependencies are built.
