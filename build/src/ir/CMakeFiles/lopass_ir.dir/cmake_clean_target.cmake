file(REMOVE_RECURSE
  "liblopass_ir.a"
)
