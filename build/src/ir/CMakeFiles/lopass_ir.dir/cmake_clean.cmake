file(REMOVE_RECURSE
  "CMakeFiles/lopass_ir.dir/infer_regions.cc.o"
  "CMakeFiles/lopass_ir.dir/infer_regions.cc.o.d"
  "CMakeFiles/lopass_ir.dir/module.cc.o"
  "CMakeFiles/lopass_ir.dir/module.cc.o.d"
  "CMakeFiles/lopass_ir.dir/opcode.cc.o"
  "CMakeFiles/lopass_ir.dir/opcode.cc.o.d"
  "CMakeFiles/lopass_ir.dir/print.cc.o"
  "CMakeFiles/lopass_ir.dir/print.cc.o.d"
  "CMakeFiles/lopass_ir.dir/region.cc.o"
  "CMakeFiles/lopass_ir.dir/region.cc.o.d"
  "CMakeFiles/lopass_ir.dir/verify.cc.o"
  "CMakeFiles/lopass_ir.dir/verify.cc.o.d"
  "liblopass_ir.a"
  "liblopass_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lopass_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
