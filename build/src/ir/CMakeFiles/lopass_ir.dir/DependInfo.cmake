
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/infer_regions.cc" "src/ir/CMakeFiles/lopass_ir.dir/infer_regions.cc.o" "gcc" "src/ir/CMakeFiles/lopass_ir.dir/infer_regions.cc.o.d"
  "/root/repo/src/ir/module.cc" "src/ir/CMakeFiles/lopass_ir.dir/module.cc.o" "gcc" "src/ir/CMakeFiles/lopass_ir.dir/module.cc.o.d"
  "/root/repo/src/ir/opcode.cc" "src/ir/CMakeFiles/lopass_ir.dir/opcode.cc.o" "gcc" "src/ir/CMakeFiles/lopass_ir.dir/opcode.cc.o.d"
  "/root/repo/src/ir/print.cc" "src/ir/CMakeFiles/lopass_ir.dir/print.cc.o" "gcc" "src/ir/CMakeFiles/lopass_ir.dir/print.cc.o.d"
  "/root/repo/src/ir/region.cc" "src/ir/CMakeFiles/lopass_ir.dir/region.cc.o" "gcc" "src/ir/CMakeFiles/lopass_ir.dir/region.cc.o.d"
  "/root/repo/src/ir/verify.cc" "src/ir/CMakeFiles/lopass_ir.dir/verify.cc.o" "gcc" "src/ir/CMakeFiles/lopass_ir.dir/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lopass_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
