# Empty compiler generated dependencies file for lopass_core.
# This may be replaced when dependencies are built.
