file(REMOVE_RECURSE
  "liblopass_core.a"
)
