file(REMOVE_RECURSE
  "CMakeFiles/lopass_core.dir/cluster.cc.o"
  "CMakeFiles/lopass_core.dir/cluster.cc.o.d"
  "CMakeFiles/lopass_core.dir/dataflow.cc.o"
  "CMakeFiles/lopass_core.dir/dataflow.cc.o.d"
  "CMakeFiles/lopass_core.dir/hotspots.cc.o"
  "CMakeFiles/lopass_core.dir/hotspots.cc.o.d"
  "CMakeFiles/lopass_core.dir/partitioner.cc.o"
  "CMakeFiles/lopass_core.dir/partitioner.cc.o.d"
  "CMakeFiles/lopass_core.dir/report.cc.o"
  "CMakeFiles/lopass_core.dir/report.cc.o.d"
  "liblopass_core.a"
  "liblopass_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lopass_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
