
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asic/datapath.cc" "src/asic/CMakeFiles/lopass_asic.dir/datapath.cc.o" "gcc" "src/asic/CMakeFiles/lopass_asic.dir/datapath.cc.o.d"
  "/root/repo/src/asic/synthesis.cc" "src/asic/CMakeFiles/lopass_asic.dir/synthesis.cc.o" "gcc" "src/asic/CMakeFiles/lopass_asic.dir/synthesis.cc.o.d"
  "/root/repo/src/asic/utilization.cc" "src/asic/CMakeFiles/lopass_asic.dir/utilization.cc.o" "gcc" "src/asic/CMakeFiles/lopass_asic.dir/utilization.cc.o.d"
  "/root/repo/src/asic/verilog.cc" "src/asic/CMakeFiles/lopass_asic.dir/verilog.cc.o" "gcc" "src/asic/CMakeFiles/lopass_asic.dir/verilog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lopass_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lopass_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/lopass_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/lopass_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
