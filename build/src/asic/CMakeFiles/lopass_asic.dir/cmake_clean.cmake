file(REMOVE_RECURSE
  "CMakeFiles/lopass_asic.dir/datapath.cc.o"
  "CMakeFiles/lopass_asic.dir/datapath.cc.o.d"
  "CMakeFiles/lopass_asic.dir/synthesis.cc.o"
  "CMakeFiles/lopass_asic.dir/synthesis.cc.o.d"
  "CMakeFiles/lopass_asic.dir/utilization.cc.o"
  "CMakeFiles/lopass_asic.dir/utilization.cc.o.d"
  "CMakeFiles/lopass_asic.dir/verilog.cc.o"
  "CMakeFiles/lopass_asic.dir/verilog.cc.o.d"
  "liblopass_asic.a"
  "liblopass_asic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lopass_asic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
