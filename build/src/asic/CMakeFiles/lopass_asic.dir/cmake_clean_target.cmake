file(REMOVE_RECURSE
  "liblopass_asic.a"
)
