# Empty compiler generated dependencies file for lopass_asic.
# This may be replaced when dependencies are built.
