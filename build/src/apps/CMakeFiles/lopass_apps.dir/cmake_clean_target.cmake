file(REMOVE_RECURSE
  "liblopass_apps.a"
)
