# Empty dependencies file for lopass_apps.
# This may be replaced when dependencies are built.
