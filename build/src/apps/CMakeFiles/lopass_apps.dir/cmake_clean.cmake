file(REMOVE_RECURSE
  "CMakeFiles/lopass_apps.dir/app_3d.cc.o"
  "CMakeFiles/lopass_apps.dir/app_3d.cc.o.d"
  "CMakeFiles/lopass_apps.dir/app_ckey.cc.o"
  "CMakeFiles/lopass_apps.dir/app_ckey.cc.o.d"
  "CMakeFiles/lopass_apps.dir/app_digs.cc.o"
  "CMakeFiles/lopass_apps.dir/app_digs.cc.o.d"
  "CMakeFiles/lopass_apps.dir/app_engine.cc.o"
  "CMakeFiles/lopass_apps.dir/app_engine.cc.o.d"
  "CMakeFiles/lopass_apps.dir/app_mpg.cc.o"
  "CMakeFiles/lopass_apps.dir/app_mpg.cc.o.d"
  "CMakeFiles/lopass_apps.dir/app_trick.cc.o"
  "CMakeFiles/lopass_apps.dir/app_trick.cc.o.d"
  "CMakeFiles/lopass_apps.dir/registry.cc.o"
  "CMakeFiles/lopass_apps.dir/registry.cc.o.d"
  "liblopass_apps.a"
  "liblopass_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lopass_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
