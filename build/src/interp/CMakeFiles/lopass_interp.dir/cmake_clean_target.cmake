file(REMOVE_RECURSE
  "liblopass_interp.a"
)
