file(REMOVE_RECURSE
  "CMakeFiles/lopass_interp.dir/interpreter.cc.o"
  "CMakeFiles/lopass_interp.dir/interpreter.cc.o.d"
  "liblopass_interp.a"
  "liblopass_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lopass_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
