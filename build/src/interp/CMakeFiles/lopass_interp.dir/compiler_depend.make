# Empty compiler generated dependencies file for lopass_interp.
# This may be replaced when dependencies are built.
