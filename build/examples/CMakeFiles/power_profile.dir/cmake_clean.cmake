file(REMOVE_RECURSE
  "CMakeFiles/power_profile.dir/power_profile.cpp.o"
  "CMakeFiles/power_profile.dir/power_profile.cpp.o.d"
  "power_profile"
  "power_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
