# Empty dependencies file for power_profile.
# This may be replaced when dependencies are built.
