# Empty compiler generated dependencies file for programmatic_ir.
# This may be replaced when dependencies are built.
