file(REMOVE_RECURSE
  "CMakeFiles/programmatic_ir.dir/programmatic_ir.cpp.o"
  "CMakeFiles/programmatic_ir.dir/programmatic_ir.cpp.o.d"
  "programmatic_ir"
  "programmatic_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/programmatic_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
