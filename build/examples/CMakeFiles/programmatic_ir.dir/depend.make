# Empty dependencies file for programmatic_ir.
# This may be replaced when dependencies are built.
