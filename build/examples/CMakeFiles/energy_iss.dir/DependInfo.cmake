
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/energy_iss.cpp" "examples/CMakeFiles/energy_iss.dir/energy_iss.cpp.o" "gcc" "examples/CMakeFiles/energy_iss.dir/energy_iss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/lopass_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lopass_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/lopass_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/lopass_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/iss/CMakeFiles/lopass_iss.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/lopass_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/lopass_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/asic/CMakeFiles/lopass_asic.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/lopass_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/lopass_power.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/lopass_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lopass_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lopass_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
