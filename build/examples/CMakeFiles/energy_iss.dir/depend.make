# Empty dependencies file for energy_iss.
# This may be replaced when dependencies are built.
