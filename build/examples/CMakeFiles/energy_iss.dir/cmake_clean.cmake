file(REMOVE_RECURSE
  "CMakeFiles/energy_iss.dir/energy_iss.cpp.o"
  "CMakeFiles/energy_iss.dir/energy_iss.cpp.o.d"
  "energy_iss"
  "energy_iss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_iss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
