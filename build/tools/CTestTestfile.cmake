# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_fir "/root/repo/build/tools/lopass_cli" "/root/repo/examples/dsl/fir.lp" "--set" "n=512" "--fill" "signal=rand:512:-128:127" "--fill" "coeff=ramp:16:2")
set_tests_properties(cli_fir PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_matmul_csv "/root/repo/build/tools/lopass_cli" "/root/repo/examples/dsl/matmul.lp" "--fill" "A=rand:256:-100:100" "--fill" "B=rand:256:-100:100" "--opt" "--csv")
set_tests_properties(cli_matmul_csv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
