# Empty compiler generated dependencies file for lopass_cli.
# This may be replaced when dependencies are built.
