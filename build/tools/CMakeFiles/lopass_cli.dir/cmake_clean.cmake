file(REMOVE_RECURSE
  "CMakeFiles/lopass_cli.dir/lopass_cli.cc.o"
  "CMakeFiles/lopass_cli.dir/lopass_cli.cc.o.d"
  "lopass_cli"
  "lopass_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lopass_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
