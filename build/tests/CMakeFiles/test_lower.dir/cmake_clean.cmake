file(REMOVE_RECURSE
  "CMakeFiles/test_lower.dir/test_lower.cc.o"
  "CMakeFiles/test_lower.dir/test_lower.cc.o.d"
  "test_lower"
  "test_lower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
