file(REMOVE_RECURSE
  "CMakeFiles/test_datapath.dir/test_datapath.cc.o"
  "CMakeFiles/test_datapath.dir/test_datapath.cc.o.d"
  "test_datapath"
  "test_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
