file(REMOVE_RECURSE
  "CMakeFiles/test_reproduction.dir/test_reproduction.cc.o"
  "CMakeFiles/test_reproduction.dir/test_reproduction.cc.o.d"
  "test_reproduction"
  "test_reproduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reproduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
