# Empty dependencies file for test_print_golden.
# This may be replaced when dependencies are built.
