file(REMOVE_RECURSE
  "CMakeFiles/test_print_golden.dir/test_print_golden.cc.o"
  "CMakeFiles/test_print_golden.dir/test_print_golden.cc.o.d"
  "test_print_golden"
  "test_print_golden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_print_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
