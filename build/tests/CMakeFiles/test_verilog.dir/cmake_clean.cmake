file(REMOVE_RECURSE
  "CMakeFiles/test_verilog.dir/test_verilog.cc.o"
  "CMakeFiles/test_verilog.dir/test_verilog.cc.o.d"
  "test_verilog"
  "test_verilog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verilog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
