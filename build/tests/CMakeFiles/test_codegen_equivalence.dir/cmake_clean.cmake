file(REMOVE_RECURSE
  "CMakeFiles/test_codegen_equivalence.dir/test_codegen_equivalence.cc.o"
  "CMakeFiles/test_codegen_equivalence.dir/test_codegen_equivalence.cc.o.d"
  "test_codegen_equivalence"
  "test_codegen_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codegen_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
