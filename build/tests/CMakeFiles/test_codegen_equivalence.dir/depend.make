# Empty dependencies file for test_codegen_equivalence.
# This may be replaced when dependencies are built.
