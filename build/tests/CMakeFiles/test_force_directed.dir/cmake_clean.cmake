file(REMOVE_RECURSE
  "CMakeFiles/test_force_directed.dir/test_force_directed.cc.o"
  "CMakeFiles/test_force_directed.dir/test_force_directed.cc.o.d"
  "test_force_directed"
  "test_force_directed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_force_directed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
