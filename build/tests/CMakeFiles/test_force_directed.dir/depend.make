# Empty dependencies file for test_force_directed.
# This may be replaced when dependencies are built.
