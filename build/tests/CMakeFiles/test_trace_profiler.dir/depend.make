# Empty dependencies file for test_trace_profiler.
# This may be replaced when dependencies are built.
