file(REMOVE_RECURSE
  "CMakeFiles/test_trace_profiler.dir/test_trace_profiler.cc.o"
  "CMakeFiles/test_trace_profiler.dir/test_trace_profiler.cc.o.d"
  "test_trace_profiler"
  "test_trace_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
