file(REMOVE_RECURSE
  "CMakeFiles/test_utilization.dir/test_utilization.cc.o"
  "CMakeFiles/test_utilization.dir/test_utilization.cc.o.d"
  "test_utilization"
  "test_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
