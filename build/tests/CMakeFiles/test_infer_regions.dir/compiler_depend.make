# Empty compiler generated dependencies file for test_infer_regions.
# This may be replaced when dependencies are built.
