file(REMOVE_RECURSE
  "CMakeFiles/test_infer_regions.dir/test_infer_regions.cc.o"
  "CMakeFiles/test_infer_regions.dir/test_infer_regions.cc.o.d"
  "test_infer_regions"
  "test_infer_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_infer_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
