file(REMOVE_RECURSE
  "CMakeFiles/test_partition_fuzz.dir/test_partition_fuzz.cc.o"
  "CMakeFiles/test_partition_fuzz.dir/test_partition_fuzz.cc.o.d"
  "test_partition_fuzz"
  "test_partition_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
