# Empty dependencies file for test_partition_fuzz.
# This may be replaced when dependencies are built.
