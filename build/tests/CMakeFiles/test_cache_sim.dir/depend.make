# Empty dependencies file for test_cache_sim.
# This may be replaced when dependencies are built.
