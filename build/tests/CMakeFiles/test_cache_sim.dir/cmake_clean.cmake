file(REMOVE_RECURSE
  "CMakeFiles/test_cache_sim.dir/test_cache_sim.cc.o"
  "CMakeFiles/test_cache_sim.dir/test_cache_sim.cc.o.d"
  "test_cache_sim"
  "test_cache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
