file(REMOVE_RECURSE
  "CMakeFiles/test_iss.dir/test_iss.cc.o"
  "CMakeFiles/test_iss.dir/test_iss.cc.o.d"
  "test_iss"
  "test_iss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
