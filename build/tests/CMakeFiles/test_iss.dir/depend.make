# Empty dependencies file for test_iss.
# This may be replaced when dependencies are built.
