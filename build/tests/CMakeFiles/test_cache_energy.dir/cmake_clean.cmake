file(REMOVE_RECURSE
  "CMakeFiles/test_cache_energy.dir/test_cache_energy.cc.o"
  "CMakeFiles/test_cache_energy.dir/test_cache_energy.cc.o.d"
  "test_cache_energy"
  "test_cache_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
