# Empty dependencies file for test_cache_energy.
# This may be replaced when dependencies are built.
