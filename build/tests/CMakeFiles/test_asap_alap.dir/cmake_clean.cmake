file(REMOVE_RECURSE
  "CMakeFiles/test_asap_alap.dir/test_asap_alap.cc.o"
  "CMakeFiles/test_asap_alap.dir/test_asap_alap.cc.o.d"
  "test_asap_alap"
  "test_asap_alap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asap_alap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
