# Empty dependencies file for test_asap_alap.
# This may be replaced when dependencies are built.
