# Empty dependencies file for test_tech_library.
# This may be replaced when dependencies are built.
