file(REMOVE_RECURSE
  "CMakeFiles/test_tech_library.dir/test_tech_library.cc.o"
  "CMakeFiles/test_tech_library.dir/test_tech_library.cc.o.d"
  "test_tech_library"
  "test_tech_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tech_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
