file(REMOVE_RECURSE
  "CMakeFiles/test_peephole.dir/test_peephole.cc.o"
  "CMakeFiles/test_peephole.dir/test_peephole.cc.o.d"
  "test_peephole"
  "test_peephole.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_peephole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
