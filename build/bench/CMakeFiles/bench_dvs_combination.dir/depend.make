# Empty dependencies file for bench_dvs_combination.
# This may be replaced when dependencies are built.
