file(REMOVE_RECURSE
  "CMakeFiles/bench_dvs_combination.dir/bench_dvs_combination.cc.o"
  "CMakeFiles/bench_dvs_combination.dir/bench_dvs_combination.cc.o.d"
  "bench_dvs_combination"
  "bench_dvs_combination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dvs_combination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
