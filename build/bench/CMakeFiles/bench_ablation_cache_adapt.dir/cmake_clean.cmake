file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cache_adapt.dir/bench_ablation_cache_adapt.cc.o"
  "CMakeFiles/bench_ablation_cache_adapt.dir/bench_ablation_cache_adapt.cc.o.d"
  "bench_ablation_cache_adapt"
  "bench_ablation_cache_adapt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cache_adapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
