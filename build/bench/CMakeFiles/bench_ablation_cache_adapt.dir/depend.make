# Empty dependencies file for bench_ablation_cache_adapt.
# This may be replaced when dependencies are built.
