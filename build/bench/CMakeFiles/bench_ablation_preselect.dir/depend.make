# Empty dependencies file for bench_ablation_preselect.
# This may be replaced when dependencies are built.
