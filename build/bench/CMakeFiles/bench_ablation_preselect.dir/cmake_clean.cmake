file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_preselect.dir/bench_ablation_preselect.cc.o"
  "CMakeFiles/bench_ablation_preselect.dir/bench_ablation_preselect.cc.o.d"
  "bench_ablation_preselect"
  "bench_ablation_preselect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_preselect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
