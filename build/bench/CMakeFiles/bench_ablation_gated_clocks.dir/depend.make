# Empty dependencies file for bench_ablation_gated_clocks.
# This may be replaced when dependencies are built.
