file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gated_clocks.dir/bench_ablation_gated_clocks.cc.o"
  "CMakeFiles/bench_ablation_gated_clocks.dir/bench_ablation_gated_clocks.cc.o.d"
  "bench_ablation_gated_clocks"
  "bench_ablation_gated_clocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gated_clocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
