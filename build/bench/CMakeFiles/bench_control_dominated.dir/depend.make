# Empty dependencies file for bench_control_dominated.
# This may be replaced when dependencies are built.
