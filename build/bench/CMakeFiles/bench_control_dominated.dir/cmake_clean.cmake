file(REMOVE_RECURSE
  "CMakeFiles/bench_control_dominated.dir/bench_control_dominated.cc.o"
  "CMakeFiles/bench_control_dominated.dir/bench_control_dominated.cc.o.d"
  "bench_control_dominated"
  "bench_control_dominated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_control_dominated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
