# Empty compiler generated dependencies file for bench_node_scaling.
# This may be replaced when dependencies are built.
