file(REMOVE_RECURSE
  "CMakeFiles/bench_node_scaling.dir/bench_node_scaling.cc.o"
  "CMakeFiles/bench_node_scaling.dir/bench_node_scaling.cc.o.d"
  "bench_node_scaling"
  "bench_node_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_node_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
