# Empty compiler generated dependencies file for bench_ablation_weighted_util.
# This may be replaced when dependencies are built.
