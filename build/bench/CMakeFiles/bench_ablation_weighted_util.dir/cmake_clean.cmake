file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_weighted_util.dir/bench_ablation_weighted_util.cc.o"
  "CMakeFiles/bench_ablation_weighted_util.dir/bench_ablation_weighted_util.cc.o.d"
  "bench_ablation_weighted_util"
  "bench_ablation_weighted_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_weighted_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
