# Empty compiler generated dependencies file for bench_ablation_fds.
# This may be replaced when dependencies are built.
