file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fds.dir/bench_ablation_fds.cc.o"
  "CMakeFiles/bench_ablation_fds.dir/bench_ablation_fds.cc.o.d"
  "bench_ablation_fds"
  "bench_ablation_fds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
