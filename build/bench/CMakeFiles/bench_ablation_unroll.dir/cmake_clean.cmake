file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_unroll.dir/bench_ablation_unroll.cc.o"
  "CMakeFiles/bench_ablation_unroll.dir/bench_ablation_unroll.cc.o.d"
  "bench_ablation_unroll"
  "bench_ablation_unroll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_unroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
