# Empty dependencies file for bench_ablation_unroll.
# This may be replaced when dependencies are built.
