file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ffactor.dir/bench_ablation_ffactor.cc.o"
  "CMakeFiles/bench_ablation_ffactor.dir/bench_ablation_ffactor.cc.o.d"
  "bench_ablation_ffactor"
  "bench_ablation_ffactor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ffactor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
