# Empty dependencies file for bench_ablation_ffactor.
# This may be replaced when dependencies are built.
