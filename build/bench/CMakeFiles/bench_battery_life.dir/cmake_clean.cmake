file(REMOVE_RECURSE
  "CMakeFiles/bench_battery_life.dir/bench_battery_life.cc.o"
  "CMakeFiles/bench_battery_life.dir/bench_battery_life.cc.o.d"
  "bench_battery_life"
  "bench_battery_life.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_battery_life.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
