# Empty dependencies file for bench_battery_life.
# This may be replaced when dependencies are built.
