# Empty dependencies file for bench_ablation_resource_sets.
# This may be replaced when dependencies are built.
