file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_resource_sets.dir/bench_ablation_resource_sets.cc.o"
  "CMakeFiles/bench_ablation_resource_sets.dir/bench_ablation_resource_sets.cc.o.d"
  "bench_ablation_resource_sets"
  "bench_ablation_resource_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_resource_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
