# Empty compiler generated dependencies file for bench_ablation_mux.
# This may be replaced when dependencies are built.
