file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mux.dir/bench_ablation_mux.cc.o"
  "CMakeFiles/bench_ablation_mux.dir/bench_ablation_mux.cc.o.d"
  "bench_ablation_mux"
  "bench_ablation_mux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
