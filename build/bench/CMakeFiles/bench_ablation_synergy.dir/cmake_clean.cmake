file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_synergy.dir/bench_ablation_synergy.cc.o"
  "CMakeFiles/bench_ablation_synergy.dir/bench_ablation_synergy.cc.o.d"
  "bench_ablation_synergy"
  "bench_ablation_synergy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_synergy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
