# Empty dependencies file for bench_ablation_synergy.
# This may be replaced when dependencies are built.
